// Benchmarks regenerating the paper's evaluation, one per experiment id
// (DESIGN.md §4). Custom metrics carry the experiment's headline number
// (precision, lift, modularity, …) so `go test -bench` output alone shows
// whether the paper's shape holds. cmd/shoal-bench prints the full tables.
package shoal_test

import (
	"context"
	"net/http/httptest"
	"net/url"
	"strconv"
	"sync"
	"testing"

	"shoal"
	"shoal/internal/abtest"
	"shoal/internal/benchjson"
	"shoal/internal/bipartite"
	"shoal/internal/bm25"
	"shoal/internal/bsp"
	"shoal/internal/catcorr"
	"shoal/internal/core"
	"shoal/internal/entitygraph"
	"shoal/internal/eval"
	"shoal/internal/hac"
	"shoal/internal/model"
	"shoal/internal/modularity"
	"shoal/internal/phac"
	"shoal/internal/recommend"
	"shoal/internal/serve"
	"shoal/internal/synth"
	"shoal/internal/textutil"
	"shoal/internal/wgraph"
	"shoal/internal/word2vec"
)

// benchWorld is the shared fixture: the fixed benchmark corpus and full
// pipeline build from benchjson.FixedWorld — the same fixture the
// BENCH_*.json substrate suite uses, built once per process and
// optionally cached on disk via SHOAL_BENCH_FIXTURE so CI's bench smoke
// pass and the benchjson re-run share one build.
type benchWorld struct {
	corpus *model.Corpus
	build  *core.Build
	sizes  []int
}

var (
	worldOnce sync.Once
	world     *benchWorld
)

func getWorld(b *testing.B) *benchWorld {
	b.Helper()
	worldOnce.Do(func() {
		bd, _, sizes, err := benchjson.FixedWorld()
		if err != nil {
			panic(err)
		}
		world = &benchWorld{corpus: bd.Corpus, build: bd, sizes: sizes}
	})
	return world
}

// BenchmarkE1Precision regenerates §3's placement-precision evaluation
// (paper: 98% over 1000 topics × 100 items).
func BenchmarkE1Precision(b *testing.B) {
	w := getWorld(b)
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := eval.Precision(w.build.Taxonomy, w.corpus, eval.PrecisionConfig{
			SampleTopics: 1000, ItemsPerTopic: 100, MinTopicItems: 3,
			RootTopicsOnly: true, Seed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res.Precision
	}
	b.ReportMetric(last, "precision")
}

// BenchmarkE2ABTest regenerates §3's online A/B simulation (paper: +5% CTR).
func BenchmarkE2ABTest(b *testing.B) {
	w := getWorld(b)
	ctl, err := recommend.NewCategoryRecommender(w.corpus)
	if err != nil {
		b.Fatal(err)
	}
	exp, err := recommend.NewTopicRecommender(w.corpus, w.build.Taxonomy)
	if err != nil {
		b.Fatal(err)
	}
	cfg := abtest.DefaultConfig()
	cfg.Users = 50_000
	var lift float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := abtest.Run(w.corpus, ctl, exp, cfg)
		if err != nil {
			b.Fatal(err)
		}
		lift = res.Lift
	}
	b.ReportMetric(lift, "lift")
}

// BenchmarkE3Modularity regenerates §2.2's quality metric (paper: > 0.3).
func BenchmarkE3Modularity(b *testing.B) {
	w := getWorld(b)
	b.ReportAllocs()
	labels := w.build.Dendrogram.CutAt(0.12)
	var q float64
	for i := 0; i < b.N; i++ {
		var err error
		q, err = modularity.Compute(w.build.Graph, labels)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(q, "modularity")
}

// BenchmarkE4Scaling regenerates §2.2's scalability comparison: sequential
// HAC vs Parallel HAC across worker counts (paper: 200M entities in 4h on
// a cluster; the shape is near-linear worker scaling).
func BenchmarkE4Scaling(b *testing.B) {
	w := getWorld(b)
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := hac.Cluster(w.build.Graph, w.sizes, hac.Config{StopThreshold: 0.12}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("parallel-w"+strconv.Itoa(workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := phac.Cluster(context.Background(), w.build.Graph, w.sizes, phac.Config{
					StopThreshold: 0.12, DiffusionRounds: 2, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5Diffusion regenerates the §2.2 iteration/parallelism
// trade-off (paper: fewer iterations ⇒ more local maximal edges; r=2).
func BenchmarkE5Diffusion(b *testing.B) {
	w := getWorld(b)
	for _, r := range []int{0, 1, 2, 4} {
		b.Run("r"+strconv.Itoa(r), func(b *testing.B) {
			b.ReportAllocs()
			var selected int
			for i := 0; i < b.N; i++ {
				sel, err := phac.Diffuse(w.build.Graph, r, 0.12, 0)
				if err != nil {
					b.Fatal(err)
				}
				selected = len(sel)
			}
			b.ReportMetric(float64(selected), "local-max-edges")
		})
	}
}

// BenchmarkE6Alpha regenerates the §2.1 blend ablation (paper: α = 0.7).
func BenchmarkE6Alpha(b *testing.B) {
	w := getWorld(b)
	clicks := bipartite.New(7)
	if err := clicks.AddAll(w.corpus.Clicks); err != nil {
		b.Fatal(err)
	}
	for _, alpha := range []float64{0, 0.7, 1} {
		b.Run("alpha"+strconv.FormatFloat(alpha, 'f', 1, 64), func(b *testing.B) {
			var nmi float64
			for i := 0; i < b.N; i++ {
				gcfg := entitygraph.DefaultConfig()
				gcfg.Alpha = alpha
				gcfg.MinSimilarity = 0.25
				res, err := entitygraph.Build(context.Background(), w.build.Entities, clicks, w.build.Embeddings, gcfg)
				if err != nil {
					b.Fatal(err)
				}
				cres, err := phac.Cluster(context.Background(), res.Graph, w.sizes, phac.Config{StopThreshold: 0.12, DiffusionRounds: 2})
				if err != nil {
					b.Fatal(err)
				}
				truth := make([]model.ScenarioID, len(w.build.Entities.Entities))
				for j := range truth {
					truth[j] = w.build.Entities.Entities[j].Scenario
				}
				part, err := eval.LabelsPartition(cres.Dendrogram.CutAt(0.12), truth)
				if err != nil {
					b.Fatal(err)
				}
				nmi = part.NMI()
			}
			b.ReportMetric(nmi, "NMI")
		})
	}
}

// BenchmarkE7CatCorr regenerates the §2.4 correlation mining at the
// paper's threshold (Sc > 10).
func BenchmarkE7CatCorr(b *testing.B) {
	w := getWorld(b)
	var pairs int
	for i := 0; i < b.N; i++ {
		g, err := catcorr.Mine(context.Background(), w.build.Taxonomy, catcorr.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		pairs = len(g.Pairs())
	}
	b.ReportMetric(float64(pairs), "pairs")
}

// BenchmarkE8Linkage regenerates the Eq. 4 linkage ablation (extension).
func BenchmarkE8Linkage(b *testing.B) {
	w := getWorld(b)
	for _, linkage := range []phac.Linkage{
		phac.LinkageSqrtSize, phac.LinkageUnweighted, phac.LinkageSizeProportional,
	} {
		b.Run(linkage.String(), func(b *testing.B) {
			var q float64
			for i := 0; i < b.N; i++ {
				res, err := phac.Cluster(context.Background(), w.build.Graph, w.sizes, phac.Config{
					StopThreshold: 0.12, DiffusionRounds: 2, Linkage: linkage,
				})
				if err != nil {
					b.Fatal(err)
				}
				q, err = modularity.Compute(w.build.Graph, res.Dendrogram.CutAt(0.12))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(q, "modularity")
		})
	}
}

// BenchmarkE9BSP regenerates the ODPS-substitution comparison: diffusion
// on the Pregel-style BSP engine vs shared memory.
func BenchmarkE9BSP(b *testing.B) {
	w := getWorld(b)
	b.Run("shared-memory", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := phac.Diffuse(w.build.Graph, 2, 0.12, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bsp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := phac.DiffuseBSP(w.build.Graph, 2, 0.12, bsp.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkF3Figure replays the paper's Fig. 3 worked example.
func BenchmarkF3Figure(b *testing.B) {
	g := wgraph.New(13)
	edges := []wgraph.Edge{
		{U: 0, V: 1, W: 0.90}, {U: 4, V: 5, W: 0.91}, {U: 10, V: 1, W: 0.74},
		{U: 0, V: 2, W: 0.70}, {U: 0, V: 3, W: 0.67}, {U: 2, V: 3, W: 0.62},
		{U: 7, V: 1, W: 0.65}, {U: 7, V: 8, W: 0.61}, {U: 3, V: 8, W: 0.58},
		{U: 2, V: 9, W: 0.64}, {U: 4, V: 6, W: 0.68}, {U: 5, V: 6, W: 0.65},
		{U: 5, V: 9, W: 0.61}, {U: 6, V: 11, W: 0.68}, {U: 11, V: 12, W: 0.63},
		{U: 9, V: 11, W: 0.58}, {U: 9, V: 6, W: 0.53},
	}
	for _, e := range edges {
		if err := g.SetEdge(e.U, e.V, e.W); err != nil {
			b.Fatal(err)
		}
	}
	var selected int
	for i := 0; i < b.N; i++ {
		sel, err := phac.Diffuse(g, 2, 0.3, 1)
		if err != nil {
			b.Fatal(err)
		}
		selected = len(sel)
	}
	if selected != 2 {
		b.Fatalf("Fig. 3 selected %d edges, want 2 (AB and EF)", selected)
	}
}

// --- substrate micro-benchmarks -------------------------------------

func benchPipeline(b *testing.B, sequential bool) {
	gen := synth.DefaultConfig()
	gen.Scenarios = 12
	gen.ItemsPerScenario = 80
	gen.QueriesPerScenario = 20
	gen.NoiseItems = 60
	gen.HeadQueries = 10
	corpus, err := synth.Generate(gen)
	if err != nil {
		b.Fatal(err)
	}
	// Default word2vec settings (3 epochs, dim 32): the embedding stage is
	// heavy enough that the concurrent schedule can hide click-graph and
	// entity formation behind it.
	cfg := shoal.DefaultConfig()
	cfg.HAC.StopThreshold = 0.12
	cfg.Taxonomy.Levels = []float64{0.12, 0.3}
	cfg.Sequential = sequential
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := shoal.Build(corpus, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineSequential runs the stage graph one stage at a time —
// the pre-engine baseline schedule.
func BenchmarkPipelineSequential(b *testing.B) { benchPipeline(b, true) }

// BenchmarkPipelineConcurrent lets the engine overlap independent stages
// (word2vec next to click-graph/entities). Output is identical to the
// sequential schedule; only wall-clock differs.
func BenchmarkPipelineConcurrent(b *testing.B) { benchPipeline(b, false) }

func BenchmarkEntityGraphBuild(b *testing.B) {
	w := getWorld(b)
	b.ReportAllocs()
	clicks := bipartite.New(7)
	if err := clicks.AddAll(w.corpus.Clicks); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := entitygraph.Build(context.Background(), w.build.Entities, clicks, w.build.Embeddings, entitygraph.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWord2VecTrain(b *testing.B) {
	w := getWorld(b)
	sentences := make([][]string, 0, len(w.corpus.Items))
	for i := range w.corpus.Items {
		sentences = append(sentences, textutil.Tokenize(w.corpus.Items[i].Title))
	}
	cfg := word2vec.DefaultConfig()
	cfg.Epochs = 1
	cfg.Dim = 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := word2vec.Train(context.Background(), sentences, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBM25TopK(b *testing.B) {
	w := getWorld(b)
	b.ReportAllocs()
	docs := make([][]string, 0, len(w.corpus.Items))
	for i := range w.corpus.Items {
		docs = append(docs, textutil.Tokenize(w.corpus.Items[i].Title))
	}
	idx, err := bm25.Build(docs, bm25.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	query := textutil.Tokenize(w.corpus.Queries[0].Text)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.TopK(query, 10)
	}
}

func BenchmarkCoClickPairs(b *testing.B) {
	w := getWorld(b)
	clicks := bipartite.New(7)
	if err := clicks.AddAll(w.corpus.Clicks); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clicks.CoClickPairs(400)
	}
}

// BenchmarkServeSearch measures the online serving path (§1: "millions of
// searches per day"): one query→topic search through the HTTP handler.
func BenchmarkServeSearch(b *testing.B) {
	w := getWorld(b)
	b.ReportAllocs()
	h, err := serve.NewHandler(w.build)
	if err != nil {
		b.Fatal(err)
	}
	probe := w.corpus.Queries[0].Text
	req := httptest.NewRequest("GET", "/api/search?q="+url.QueryEscape(probe)+"&k=5", nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// BenchmarkServeStats measures the /api/stats path, which now folds the
// per-route latency digests into the build facts on every request.
func BenchmarkServeStats(b *testing.B) {
	w := getWorld(b)
	b.ReportAllocs()
	h, err := serve.NewHandler(w.build)
	if err != nil {
		b.Fatal(err)
	}
	req := httptest.NewRequest("GET", "/api/stats", nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// BenchmarkDailyRebuild measures one day's full sliding-window rebuild
// (§3's production refresh).
func BenchmarkDailyRebuild(b *testing.B) {
	gen := synth.DefaultConfig()
	gen.Scenarios = 8
	gen.ItemsPerScenario = 60
	gen.QueriesPerScenario = 15
	gen.NoiseItems = 30
	gen.HeadQueries = 6
	gen.Days = 7
	corpus, err := synth.Generate(gen)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Word2Vec.Epochs = 1
	cfg.Word2Vec.MinCount = 1
	cfg.HAC.StopThreshold = 0.12
	cfg.Taxonomy.Levels = []float64{0.12, 0.3}
	p, err := core.NewDailyPipeline(corpus, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := p.IngestDay(corpus.Clicks); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Rebuild(); err != nil {
			b.Fatal(err)
		}
	}
}
