package phac

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"testing"

	"shoal/internal/shard"
)

// TestShardedObservationallyIdentical is the phac-level half of the
// shard determinism contract: Diffuse over a sharded CSR (one worker
// per shard) and Cluster at any Shards width must produce results
// byte-identical to the single-shard run.
func TestShardedObservationallyIdentical(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		g := randomGraph(90, 200, seed)
		base := g.Freeze()

		for _, r := range []int{0, 1, 2, 4} {
			want, err := Diffuse(base, r, 0.1, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range []int{1, 2, 3, 5, 8, runtime.GOMAXPROCS(0) + 3} {
				got, err := Diffuse(shard.Partition(base, s), r, 0.1, 0)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d r=%d shards=%d: Diffuse differs from single-shard", seed, r, s)
				}
			}
		}

		ref, err := Cluster(context.Background(), base, nil,
			Config{StopThreshold: 0.15, DiffusionRounds: 2, Workers: 1, Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		refBytes := gobBytes(t, ref)
		for _, s := range []int{2, 3, 4, 7, runtime.GOMAXPROCS(0) + 3} {
			for _, w := range []int{1, 4} {
				res, err := Cluster(context.Background(), base, nil,
					Config{StopThreshold: 0.15, DiffusionRounds: 2, Workers: w, Shards: s})
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(gobBytes(t, res), refBytes) {
					t.Fatalf("seed %d shards=%d workers=%d: Cluster differs from single-shard", seed, s, w)
				}
			}
		}
		// A sharded input graph must not change the result either.
		res, err := Cluster(context.Background(), shard.Partition(base, 4), nil,
			Config{StopThreshold: 0.15, DiffusionRounds: 2, Workers: 4, Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gobBytes(t, res), refBytes) {
			t.Fatalf("seed %d: Cluster over sharded view differs", seed)
		}
	}
}

// TestShardedRebuildForcedParallel drives Cluster with many shards on a
// graph large enough to cross the sharded-rebuild threshold, so the
// partition-parallel count/fill path is actually exercised (not just the
// serial fallback), and compares against the single-shard run.
func TestShardedRebuildForcedParallel(t *testing.T) {
	g := randomGraph(700, 2400, 42)
	base := g.Freeze()
	ref, err := Cluster(context.Background(), base, nil,
		Config{StopThreshold: 0.1, DiffusionRounds: 2, Workers: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	refBytes := gobBytes(t, ref)
	for _, s := range []int{2, 6, 16} {
		res, err := Cluster(context.Background(), base, nil,
			Config{StopThreshold: 0.1, DiffusionRounds: 2, Workers: 4, Shards: s})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gobBytes(t, res), refBytes) {
			t.Fatalf("shards=%d: forced-parallel rebuild differs from single-shard", s)
		}
	}
}
