// Package catcorr mines correlations between ontology categories from the
// query-driven taxonomy (paper §2.4, Eq. 5).
//
// Root topics act as pivots: the correlation strength of two categories is
// the number of root topics whose category set contains both. Pairs with
// strength above a threshold (the paper uses > 10) form the category
// correlation graph that powers "related category" recommendation (demo
// scenario D).
package catcorr

import (
	"context"
	"fmt"
	"sort"

	"shoal/internal/model"
	"shoal/internal/taxonomy"
)

// Config controls correlation mining.
type Config struct {
	// MinStrength keeps a pair only if its co-occurrence count is
	// strictly greater. The paper uses 10.
	MinStrength int
}

// DefaultConfig mirrors the paper's Sc > 10 rule.
func DefaultConfig() Config { return Config{MinStrength: 10} }

// Correlation is one correlated category pair (A < B).
type Correlation struct {
	A, B model.CategoryID
	// Strength is Sc(A, B): the number of root topics containing both.
	Strength int
}

// Graph is the mined category correlation graph.
type Graph struct {
	pairs map[[2]model.CategoryID]int
	adj   map[model.CategoryID]map[model.CategoryID]int
	cfg   Config
}

// Mine computes Eq. 5 over the root topics of tx. Cancellation is checked
// between root topics.
func Mine(ctx context.Context, tx *taxonomy.Taxonomy, cfg Config) (*Graph, error) {
	if cfg.MinStrength < 0 {
		return nil, fmt.Errorf("catcorr: MinStrength must be non-negative, got %d", cfg.MinStrength)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g := &Graph{
		pairs: make(map[[2]model.CategoryID]int),
		adj:   make(map[model.CategoryID]map[model.CategoryID]int),
		cfg:   cfg,
	}
	for ri, root := range tx.Roots() {
		if ri%256 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		cats := tx.Topics[root].Categories // sorted, distinct
		for i := 0; i < len(cats); i++ {
			for j := i + 1; j < len(cats); j++ {
				g.pairs[[2]model.CategoryID{cats[i], cats[j]}]++
			}
		}
	}
	for k, n := range g.pairs {
		if n <= cfg.MinStrength {
			continue
		}
		g.link(k[0], k[1], n)
		g.link(k[1], k[0], n)
	}
	return g, nil
}

func (g *Graph) link(a, b model.CategoryID, n int) {
	if g.adj[a] == nil {
		g.adj[a] = make(map[model.CategoryID]int)
	}
	g.adj[a][b] = n
}

// Strength returns the raw co-occurrence count of a pair (before
// thresholding).
func (g *Graph) Strength(a, b model.CategoryID) int {
	if a > b {
		a, b = b, a
	}
	return g.pairs[[2]model.CategoryID{a, b}]
}

// Correlated reports whether the pair passed the threshold.
func (g *Graph) Correlated(a, b model.CategoryID) bool {
	return g.adj[a][b] > 0
}

// Related returns the categories correlated with c, strongest first (ties
// by ascending id) — demo scenario D's star graph around a category.
func (g *Graph) Related(c model.CategoryID) []Correlation {
	m := g.adj[c]
	out := make([]Correlation, 0, len(m))
	for other, n := range m {
		a, b := c, other
		if a > b {
			a, b = b, a
		}
		out = append(out, Correlation{A: a, B: b, Strength: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Strength != out[j].Strength {
			return out[i].Strength > out[j].Strength
		}
		oi, oj := other(out[i], c), other(out[j], c)
		return oi < oj
	})
	return out
}

// Pairs returns every correlated pair, sorted by (A, B).
func (g *Graph) Pairs() []Correlation {
	out := make([]Correlation, 0, len(g.pairs))
	for k, n := range g.pairs {
		if n > g.cfg.MinStrength {
			out = append(out, Correlation{A: k[0], B: k[1], Strength: n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

func other(c Correlation, self model.CategoryID) model.CategoryID {
	if c.A == self {
		return c.B
	}
	return c.A
}
