package entitygraph

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"shoal/internal/bipartite"
	"shoal/internal/model"
	"shoal/internal/synth"
	"shoal/internal/textutil"
	"shoal/internal/word2vec"
)

func TestPriceBand(t *testing.T) {
	if priceBand(0) != 0 || priceBand(-5) != 0 {
		t.Fatal("non-positive prices should band to 0")
	}
	if priceBand(100) != priceBand(120) {
		t.Fatal("near prices should share a band")
	}
	if priceBand(100) == priceBand(100000) {
		t.Fatal("far prices should not share a band")
	}
	// Monotone non-decreasing.
	prev := -1
	for p := int64(1); p < 1_000_000; p *= 2 {
		b := priceBand(p)
		if b < prev {
			t.Fatalf("priceBand not monotone at %d", p)
		}
		prev = b
	}
}

func TestBuildEntitiesGroups(t *testing.T) {
	c := &model.Corpus{
		Categories: []model.Category{{ID: 0, Name: "Dress", Parent: model.RootCategory}},
		Items: []model.Item{
			{ID: 0, Title: "beach dress", Category: 0, PriceCents: 1000, Attrs: []string{"color=red", "size=m"}},
			{ID: 1, Title: "beach dress 2", Category: 0, PriceCents: 1050, Attrs: []string{"size=m", "color=red"}},
			{ID: 2, Title: "beach dress 3", Category: 0, PriceCents: 99000, Attrs: []string{"color=red", "size=m"}},
			{ID: 3, Title: "other dress", Category: 0, PriceCents: 1000, Attrs: []string{"color=blue"}},
		},
	}
	es, err := BuildEntities(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	// Items 0,1: same cat, same attrs (order-insensitive), same band -> one entity.
	if es.ItemEntity[0] != es.ItemEntity[1] {
		t.Fatal("items 0,1 should share an entity")
	}
	if es.ItemEntity[0] == es.ItemEntity[2] {
		t.Fatal("items 0,2 differ in price band but share an entity")
	}
	if es.ItemEntity[0] == es.ItemEntity[3] {
		t.Fatal("items 0,3 differ in attrs but share an entity")
	}
	if len(es.Entities) != 3 {
		t.Fatalf("entities = %d, want 3", len(es.Entities))
	}
	e := es.Entities[es.ItemEntity[0]]
	if e.Size() != 2 {
		t.Fatalf("entity size = %d, want 2", e.Size())
	}
	if len(e.Tokens) == 0 {
		t.Fatal("entity has no title tokens")
	}
}

func TestBuildEntitiesMajorityScenario(t *testing.T) {
	c := &model.Corpus{
		Categories: []model.Category{{ID: 0, Name: "X", Parent: model.RootCategory}},
		Items: []model.Item{
			{ID: 0, Title: "a", Category: 0, PriceCents: 100, Scenario: 2},
			{ID: 1, Title: "b", Category: 0, PriceCents: 100, Scenario: 2},
			{ID: 2, Title: "c", Category: 0, PriceCents: 100, Scenario: 1},
		},
	}
	es, err := BuildEntities(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if len(es.Entities) != 1 {
		t.Fatalf("entities = %d, want 1", len(es.Entities))
	}
	if es.Entities[0].Scenario != 2 {
		t.Fatalf("majority scenario = %d, want 2", es.Entities[0].Scenario)
	}
}

func TestBuildEntitiesInvalidCorpus(t *testing.T) {
	c := &model.Corpus{Items: []model.Item{{ID: 5}}}
	if _, err := BuildEntities(context.Background(), c); err == nil {
		t.Fatal("BuildEntities accepted invalid corpus")
	}
}

// buildFixture builds a corpus with two clear co-click communities and
// returns the graph result.
func buildFixture(t *testing.T, cfg Config) *Result {
	t.Helper()
	c := synth.Curated()
	es, err := BuildEntities(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	clicks := bipartite.New(0)
	if err := clicks.AddAll(c.Clicks); err != nil {
		t.Fatal(err)
	}
	var sentences [][]string
	for _, it := range c.Items {
		sentences = append(sentences, textutil.Tokenize(it.Title))
	}
	w2vCfg := word2vec.DefaultConfig()
	w2vCfg.MinCount = 1
	w2vCfg.Epochs = 4
	emb, err := word2vec.Train(context.Background(), sentences, w2vCfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(context.Background(), es, clicks, emb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBuildGraphSeparatesScenarios(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinSimilarity = 0.15
	res := buildFixture(t, cfg)
	if res.Graph.NumEdges() == 0 {
		t.Fatal("graph has no edges")
	}
	// Edges within a scenario should be stronger on average than across.
	var inSum, outSum float64
	var inN, outN int
	for _, e := range res.Graph.Edges() {
		su := res.Set.Entities[e.U].Scenario
		sv := res.Set.Entities[e.V].Scenario
		if su == sv && su != model.NoScenario {
			inSum += e.W
			inN++
		} else {
			outSum += e.W
			outN++
		}
	}
	if inN == 0 {
		t.Fatal("no within-scenario edges")
	}
	inAvg := inSum / float64(inN)
	outAvg := 0.0
	if outN > 0 {
		outAvg = outSum / float64(outN)
	}
	if inAvg <= outAvg {
		t.Fatalf("within-scenario avg %.3f not above cross %.3f", inAvg, outAvg)
	}
}

func TestBuildGraphSimilarityBounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinSimilarity = 0
	res := buildFixture(t, cfg)
	for _, e := range res.Graph.Edges() {
		if e.W < 0 || e.W > 1+1e-9 || math.IsNaN(e.W) {
			t.Fatalf("edge (%d,%d) weight %f outside [0,1]", e.U, e.V, e.W)
		}
	}
}

func TestBuildGraphMinSimilarityFilter(t *testing.T) {
	loose := buildFixture(t, Config{Alpha: 0.7, MinSimilarity: 0.05, TopK: 0})
	tight := buildFixture(t, Config{Alpha: 0.7, MinSimilarity: 0.6, TopK: 0})
	if tight.Graph.NumEdges() >= loose.Graph.NumEdges() {
		t.Fatalf("tight filter kept %d edges, loose %d", tight.Graph.NumEdges(), loose.Graph.NumEdges())
	}
	for _, e := range tight.Graph.Edges() {
		if e.W < 0.6 {
			t.Fatalf("edge below MinSimilarity survived: %f", e.W)
		}
	}
}

func TestBuildGraphTopK(t *testing.T) {
	capped := buildFixture(t, Config{Alpha: 0.7, MinSimilarity: 0.05, TopK: 2})
	// TopK keeps an edge if it's in either endpoint's top-2, so a node's
	// degree can exceed 2 but should stay small; degree must never
	// exceed NumNodes-1, and most importantly capped <= uncapped.
	uncapped := buildFixture(t, Config{Alpha: 0.7, MinSimilarity: 0.05, TopK: 0})
	if capped.Graph.NumEdges() > uncapped.Graph.NumEdges() {
		t.Fatal("TopK increased edge count")
	}
	if capped.Graph.NumEdges() == 0 {
		t.Fatal("TopK removed everything")
	}
}

func TestBuildNilEmbedding(t *testing.T) {
	c := synth.Curated()
	es, err := BuildEntities(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	clicks := bipartite.New(0)
	if err := clicks.AddAll(c.Clicks); err != nil {
		t.Fatal(err)
	}
	res, err := Build(context.Background(), es, clicks, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumEdges() == 0 {
		t.Fatal("nil-embedding graph has no edges")
	}
}

func TestBuildConfigValidation(t *testing.T) {
	c := synth.Curated()
	es, _ := BuildEntities(context.Background(), c)
	clicks := bipartite.New(0)
	_ = clicks.AddAll(c.Clicks)
	bad := []Config{
		{Alpha: -0.1},
		{Alpha: 1.1},
		{Alpha: 0.5, MinSimilarity: -1},
		{Alpha: 0.5, MinSimilarity: 2},
		{Alpha: 0.5, TopK: -1},
		{Alpha: 0.5, MaxQueryFanout: -2},
	}
	for i, cfg := range bad {
		if _, err := Build(context.Background(), es, clicks, nil, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := Build(context.Background(), nil, clicks, nil, DefaultConfig()); err == nil {
		t.Error("nil entity set accepted")
	}
}

func TestBuildDeterministicAcrossWorkerCounts(t *testing.T) {
	// Train the embedding once and share it: word2vec's Hogwild updates
	// are documented as racy, so determinism is asserted for the graph
	// construction itself, over fixed inputs.
	c := synth.Curated()
	es, err := BuildEntities(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	clicks := bipartite.New(0)
	if err := clicks.AddAll(c.Clicks); err != nil {
		t.Fatal(err)
	}
	var sentences [][]string
	for _, it := range c.Items {
		sentences = append(sentences, textutil.Tokenize(it.Title))
	}
	w2vCfg := word2vec.DefaultConfig()
	w2vCfg.MinCount = 1
	w2vCfg.Workers = 1
	emb, err := word2vec.Train(context.Background(), sentences, w2vCfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg1 := DefaultConfig()
	cfg1.Workers = 1
	cfgN := DefaultConfig()
	cfgN.Workers = 4
	a, err := Build(context.Background(), es, clicks, emb, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(context.Background(), es, clicks, emb, cfgN)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Graph.Edges(), b.Graph.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ across worker counts: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

// Property: meanNormVector output has length <= 1 (mean of unit vectors).
func TestMeanNormVectorBounded(t *testing.T) {
	sents := [][]string{{"a", "b", "c", "a"}, {"b", "c", "d"}, {"a", "d", "e"}}
	cfg := word2vec.DefaultConfig()
	cfg.MinCount = 1
	cfg.Epochs = 2
	emb, err := word2vec.Train(context.Background(), sents, cfg)
	if err != nil {
		t.Fatal(err)
	}
	words := []string{"a", "b", "c", "d", "e", "zz"}
	f := func(picks []uint8) bool {
		toks := make([]string, 0, len(picks))
		for _, p := range picks {
			toks = append(toks, words[int(p)%len(words)])
		}
		m := meanNormVector(emb, toks)
		if m == nil {
			return true
		}
		var n float64
		for _, x := range m {
			n += float64(x) * float64(x)
		}
		return math.Sqrt(n) <= 1+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
