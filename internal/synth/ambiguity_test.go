package synth

import (
	"strings"
	"testing"

	"shoal/internal/model"
)

func TestAmbiguousTitleRateZero(t *testing.T) {
	cfg := smallConfig()
	cfg.AmbiguousTitleRate = 0
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range c.Items {
		if it.TitleAmbiguous {
			t.Fatalf("item %d ambiguous despite rate 0", it.ID)
		}
	}
}

func TestAmbiguousTitleRateOne(t *testing.T) {
	cfg := smallConfig()
	cfg.AmbiguousTitleRate = 1
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range c.Items {
		if it.Scenario == model.NoScenario {
			continue // noise items are never flagged
		}
		if !it.TitleAmbiguous {
			t.Fatalf("scenario item %d not ambiguous despite rate 1", it.ID)
		}
	}
}

func TestAmbiguousTitlesUseGenericWords(t *testing.T) {
	cfg := smallConfig()
	cfg.AmbiguousTitleRate = 0.5
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	generic := make(map[string]bool, len(genericTitleWords))
	for _, w := range genericTitleWords {
		generic[w] = true
	}
	catNames := make(map[string]bool)
	for _, cat := range c.Categories {
		catNames[cat.Name] = true
	}
	var ambiguous, descriptive int
	for _, it := range c.Items {
		if it.Scenario == model.NoScenario {
			continue
		}
		words := strings.Fields(it.Title)
		if it.TitleAmbiguous {
			ambiguous++
			for _, w := range words {
				if !generic[w] && !catNames[w] {
					t.Fatalf("ambiguous item %d title has non-generic word %q: %q", it.ID, w, it.Title)
				}
			}
		} else {
			descriptive++
		}
	}
	if ambiguous == 0 || descriptive == 0 {
		t.Fatalf("rate 0.5 gave ambiguous=%d descriptive=%d, want both populated", ambiguous, descriptive)
	}
}

func TestAmbiguousRateValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.AmbiguousTitleRate = 1.5
	if _, err := Generate(cfg); err == nil {
		t.Fatal("rate > 1 accepted")
	}
	cfg.AmbiguousTitleRate = -0.1
	if _, err := Generate(cfg); err == nil {
		t.Fatal("negative rate accepted")
	}
}

// Families must be scenario-pure so entity formation cannot mix scenarios.
func TestFamiliesAreScenarioPure(t *testing.T) {
	cfg := smallConfig()
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byModel := make(map[string]model.ScenarioID)
	for _, it := range c.Items {
		if it.Scenario == model.NoScenario || len(it.Attrs) == 0 {
			continue
		}
		key := it.Attrs[0] // "model=sX-fY"
		if !strings.HasPrefix(key, "model=") {
			t.Fatalf("item %d first attr %q is not a model tag", it.ID, key)
		}
		if prev, ok := byModel[key]; ok && prev != it.Scenario {
			t.Fatalf("family %q spans scenarios %d and %d", key, prev, it.Scenario)
		}
		byModel[key] = it.Scenario
	}
	if len(byModel) == 0 {
		t.Fatal("no families found")
	}
}

// Variant prices must stay within one 2x price band most of the time so
// entity formation actually groups them.
func TestFamilyVariantsShareEntities(t *testing.T) {
	cfg := smallConfig()
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Count items per model tag; families with >1 item must exist.
	sizes := make(map[string]int)
	for _, it := range c.Items {
		if it.Scenario == model.NoScenario || len(it.Attrs) == 0 {
			continue
		}
		sizes[it.Attrs[0]]++
	}
	multi := 0
	for _, n := range sizes {
		if n > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no multi-variant families generated")
	}
}
