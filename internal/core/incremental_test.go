package core

import (
	"bytes"
	"context"
	"encoding/gob"
	"reflect"
	"testing"

	"shoal/internal/bipartite"
	"shoal/internal/model"
	"shoal/internal/synth"
)

// coreSlideDays spreads the corpus clicks over `days` synthetic days
// with a production-shaped delta profile: most click pairs recur every
// day (stable window mass — counts shift on a slide, membership does
// not) while a rotating tail lives on a single day each, so every slide
// perturbs a small item set in both directions.
func coreSlideDays(c *model.Corpus, days int32) [][]model.ClickEvent {
	out := make([][]model.ClickEvent, days)
	for d := int32(0); d < days; d++ {
		for i, ev := range c.Clicks {
			if i%7 == 0 && int32(i/7)%days != d {
				continue
			}
			ev.Day = d
			out[d] = append(out[d], ev)
		}
	}
	return out
}

func gobBytes(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestIncrementalRebuildMatchesFromScratch is the tentpole determinism
// suite: slide a multi-day window through the incremental daily
// pipeline and gob-compare the taxonomy (plus dendrogram and round
// stats) against a from-scratch build over the same window at EVERY
// step, across shard/worker counts and both clustering execution paths.
// Embeddings stay off: the Hogwild trainer is the one intentionally
// nondeterministic stage, so the from-scratch baseline itself would not
// reproduce with them on.
func TestIncrementalRebuildMatchesFromScratch(t *testing.T) {
	ctx := context.Background()
	c := synth.Curated()
	days := coreSlideDays(c, 8)

	for _, tc := range []struct {
		name    string
		workers int
		shards  int
		bsp     bool
	}{
		{"w1-s1", 1, 1, false},
		{"w4-s3", 4, 3, false},
		{"w2-s2-bsp", 2, 2, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.WindowDays = 4
			cfg.TrainEmbeddings = false
			cfg.Shards = tc.shards
			cfg.BSP = tc.bsp
			cfg.HAC.Workers = tc.workers
			cfg.Graph.Workers = tc.workers
			cfg.Graph.MinSimilarity = 0.15

			incCfg := cfg
			incCfg.Incremental = true
			p, err := NewDailyPipeline(c, incCfg)
			if err != nil {
				t.Fatal(err)
			}

			sawSeeded := false
			sawReplayed := false
			for d := range days {
				if err := p.IngestDay(days[d]); err != nil {
					t.Fatal(err)
				}
				bInc, err := p.RebuildContext(ctx)
				if err != nil {
					t.Fatalf("day %d: incremental rebuild: %v", d, err)
				}
				if bInc.Delta == nil || !bInc.Delta.Incremental {
					t.Fatalf("day %d: incremental build carries no delta stats", d)
				}
				if !bInc.Delta.DenseFallback && bInc.Delta.SeededRows > 0 {
					sawSeeded = true
				}
				if bInc.Delta.ReplayedRounds > 0 {
					if bInc.Delta.ClusterCold != "" {
						t.Fatalf("day %d: replayed %d rounds but delta claims a cold clustering (%s)",
							d, bInc.Delta.ReplayedRounds, bInc.Delta.ClusterCold)
					}
					sawReplayed = true
				}

				full := bipartite.New(cfg.WindowDays)
				for fd := 0; fd <= d; fd++ {
					if err := full.AddAll(days[fd]); err != nil {
						t.Fatal(err)
					}
				}
				bFull, err := RunWithClicksContext(ctx, c, full, cfg)
				if err != nil {
					t.Fatalf("day %d: from-scratch build: %v", d, err)
				}
				if !bytes.Equal(gobBytes(t, bInc.Taxonomy), gobBytes(t, bFull.Taxonomy)) {
					t.Fatalf("day %d: incremental taxonomy diverged from from-scratch", d)
				}
				if !reflect.DeepEqual(bInc.Dendrogram, bFull.Dendrogram) {
					t.Fatalf("day %d: dendrogram diverged", d)
				}
				if !reflect.DeepEqual(bInc.Rounds, bFull.Rounds) {
					t.Fatalf("day %d: clustering round stats diverged", d)
				}
				if !bytes.Equal(gobBytes(t, bInc.Descriptions), gobBytes(t, bFull.Descriptions)) {
					t.Fatalf("day %d: topic descriptions diverged", d)
				}
			}
			if !sawSeeded {
				t.Fatal("no slide warm-started clustering; the incremental path was never exercised")
			}
			if !sawReplayed {
				t.Fatal("no slide replayed any merge round; dendrogram-prefix reuse was never exercised")
			}
		})
	}
}

// TestStabilityTrajectoryIncremental locks core.Stability under
// incremental rebuilds: the day-over-day stability trajectory of the
// incremental pipeline equals the from-scratch pipeline's exactly.
func TestStabilityTrajectoryIncremental(t *testing.T) {
	ctx := context.Background()
	c := synth.Curated()
	days := coreSlideDays(c, 6)

	cfg := DefaultConfig()
	cfg.WindowDays = 3
	cfg.TrainEmbeddings = false
	cfg.Shards = 2
	cfg.Graph.MinSimilarity = 0.15

	incCfg := cfg
	incCfg.Incremental = true
	pInc, err := NewDailyPipeline(c, incCfg)
	if err != nil {
		t.Fatal(err)
	}
	pFull, err := NewDailyPipeline(c, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var trajInc, trajFull []float64
	var prevInc, prevFull *Build
	for d := range days {
		if err := pInc.IngestDay(days[d]); err != nil {
			t.Fatal(err)
		}
		if err := pFull.IngestDay(days[d]); err != nil {
			t.Fatal(err)
		}
		bInc, err := pInc.RebuildContext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		bFull, err := pFull.RebuildContext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if prevInc != nil {
			si, err := Stability(prevInc, bInc)
			if err != nil {
				t.Fatal(err)
			}
			sf, err := Stability(prevFull, bFull)
			if err != nil {
				t.Fatal(err)
			}
			trajInc = append(trajInc, si)
			trajFull = append(trajFull, sf)
		}
		prevInc, prevFull = bInc, bFull
	}
	if !reflect.DeepEqual(trajInc, trajFull) {
		t.Fatalf("stability trajectories diverged:\nincremental: %v\nfrom-scratch: %v", trajInc, trajFull)
	}
}
