package abtest

import (
	"math/rand/v2"
	"testing"

	"shoal/internal/model"
	"shoal/internal/recommend"
)

// scriptedRecommender returns a fixed panel regardless of seed.
type scriptedRecommender struct {
	name  string
	panel []model.ItemID
}

func (s *scriptedRecommender) Name() string { return s.name }

func (s *scriptedRecommender) Recommend(seed model.ItemID, k int, rng *rand.Rand) []model.ItemID {
	if k > len(s.panel) {
		k = len(s.panel)
	}
	return s.panel[:k]
}

// corpus: items 0..3 in scenario 0 category 0; items 4..7 scenario 1
// category 1; items 8..9 unlabeled category 2.
func testCorpus() *model.Corpus {
	c := &model.Corpus{
		Categories: []model.Category{
			{ID: 0, Name: "A", Parent: model.RootCategory},
			{ID: 1, Name: "B", Parent: model.RootCategory},
			{ID: 2, Name: "C", Parent: model.RootCategory},
		},
	}
	for i := 0; i < 10; i++ {
		scen := model.ScenarioID(0)
		cat := model.CategoryID(0)
		switch {
		case i >= 8:
			scen, cat = model.NoScenario, 2
		case i >= 4:
			scen, cat = 1, 1
		}
		c.Items = append(c.Items, model.Item{
			ID: model.ItemID(i), Title: "t", Category: cat, PriceCents: 100, Scenario: scen,
		})
	}
	return c
}

func TestRunScenarioArmWins(t *testing.T) {
	corpus := testCorpus()
	// Control always shows unlabeled items (irrelevant); experiment
	// always shows scenario-0 items. Users mostly hold scenario 0 or 1.
	ctl := &scriptedRecommender{name: "ctl", panel: []model.ItemID{8, 9}}
	exp := &scriptedRecommender{name: "exp", panel: []model.ItemID{0, 1}}
	cfg := DefaultConfig()
	cfg.Users = 20_000
	res, err := Run(corpus, ctl, exp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Experiment.CTR <= res.Control.CTR {
		t.Fatalf("experiment CTR %f not above control %f", res.Experiment.CTR, res.Control.CTR)
	}
	if res.Lift <= 0 {
		t.Fatalf("lift = %f, want positive", res.Lift)
	}
	if res.ZScore <= 2 {
		t.Fatalf("z-score = %f, want clearly significant", res.ZScore)
	}
	if res.Control.Name != "ctl" || res.Experiment.Name != "exp" {
		t.Fatal("arm names not propagated")
	}
}

func TestRunIdenticalArmsNoLift(t *testing.T) {
	corpus := testCorpus()
	same := &scriptedRecommender{name: "same", panel: []model.ItemID{0, 4}}
	cfg := DefaultConfig()
	cfg.Users = 50_000
	res, err := Run(corpus, same, same, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Identical arms: lift should be statistically indistinguishable
	// from zero.
	if res.ZScore > 3 || res.ZScore < -3 {
		t.Fatalf("identical arms produced z=%f", res.ZScore)
	}
}

func TestRunDeterministic(t *testing.T) {
	corpus := testCorpus()
	ctl := &scriptedRecommender{name: "c", panel: []model.ItemID{8}}
	exp := &scriptedRecommender{name: "e", panel: []model.ItemID{0}}
	cfg := DefaultConfig()
	cfg.Users = 5_000
	a, err := Run(corpus, ctl, exp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(corpus, ctl, exp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("same seed gave different results: %+v vs %+v", a, b)
	}
	cfg.Seed = 99
	c, err := Run(corpus, ctl, exp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Control.Clicks == c.Control.Clicks && a.Experiment.Clicks == c.Experiment.Clicks {
		t.Fatal("different seeds gave identical click counts")
	}
}

func TestRunImpressionAccounting(t *testing.T) {
	corpus := testCorpus()
	ctl := &scriptedRecommender{name: "c", panel: []model.ItemID{8, 9}}
	exp := &scriptedRecommender{name: "e", panel: []model.ItemID{0, 1}}
	cfg := DefaultConfig()
	cfg.Users = 1000
	cfg.PanelSize = 2
	res, err := Run(corpus, ctl, exp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Control.Impressions != 1000 {
		t.Fatalf("control impressions = %d, want 1000 (500 users x 2)", res.Control.Impressions)
	}
	if res.Experiment.Impressions != 1000 {
		t.Fatalf("experiment impressions = %d, want 1000", res.Experiment.Impressions)
	}
	if res.Control.Clicks > res.Control.Impressions {
		t.Fatal("clicks exceed impressions")
	}
}

func TestRunValidation(t *testing.T) {
	corpus := testCorpus()
	r := &scriptedRecommender{name: "r", panel: []model.ItemID{0}}
	bad := []Config{
		{Users: 0, PanelSize: 1, BaseCTR: 0.1, ScenarioCTR: 0.2, CategoryCTR: 0.1},
		{Users: 10, PanelSize: 0, BaseCTR: 0.1, ScenarioCTR: 0.2, CategoryCTR: 0.1},
		{Users: 10, PanelSize: 1, BaseCTR: -0.1, ScenarioCTR: 0.2, CategoryCTR: 0.1},
		{Users: 10, PanelSize: 1, BaseCTR: 0.1, ScenarioCTR: 1.2, CategoryCTR: 0.1},
	}
	for i, cfg := range bad {
		if _, err := Run(corpus, r, r, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := Run(corpus, nil, r, DefaultConfig()); err == nil {
		t.Fatal("nil recommender accepted")
	}
	if _, err := Run(&model.Corpus{}, r, r, DefaultConfig()); err == nil {
		t.Fatal("empty corpus accepted")
	}
	// Corpus with no labeled items cannot seed users.
	unlabeled := &model.Corpus{
		Categories: []model.Category{{ID: 0, Name: "A", Parent: model.RootCategory}},
		Items:      []model.Item{{ID: 0, Title: "x", Category: 0, Scenario: model.NoScenario}},
	}
	if _, err := Run(unlabeled, r, r, DefaultConfig()); err == nil {
		t.Fatal("unlabeled corpus accepted")
	}
}

var _ recommend.Recommender = (*scriptedRecommender)(nil)
