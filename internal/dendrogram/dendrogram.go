// Package dendrogram records the merge history produced by hierarchical
// agglomerative clustering and derives flat or multi-level partitions from
// it. Both the sequential baseline (internal/hac) and Parallel HAC
// (internal/phac) emit the same structure, so quality metrics and the topic
// tree builder are agnostic to which algorithm ran.
package dendrogram

import (
	"fmt"
)

// Merge is one agglomeration step: clusters A and B combined into a new
// cluster New at similarity Sim during round Round (sequential HAC uses one
// round per merge; Parallel HAC merges many pairs per round).
type Merge struct {
	A, B, New int32
	Sim       float64
	Round     int32
}

// Dendrogram is a merge forest over Leaves initial singleton clusters.
// Cluster ids: leaves are 0..Leaves-1; the i-th merge creates id Leaves+i.
type Dendrogram struct {
	Leaves int
	Merges []Merge
}

// Validate checks well-formedness: every merge combines two distinct,
// previously unmerged, existing clusters and mints the next sequential id.
func (d *Dendrogram) Validate() error {
	if d.Leaves < 0 {
		return fmt.Errorf("dendrogram: negative leaf count %d", d.Leaves)
	}
	merged := make(map[int32]bool)
	for i, m := range d.Merges {
		want := int32(d.Leaves + i)
		if m.New != want {
			return fmt.Errorf("dendrogram: merge %d mints id %d, want %d", i, m.New, want)
		}
		if m.A == m.B {
			return fmt.Errorf("dendrogram: merge %d combines cluster %d with itself", i, m.A)
		}
		for _, c := range []int32{m.A, m.B} {
			if c < 0 || c >= want {
				return fmt.Errorf("dendrogram: merge %d references cluster %d not yet created", i, c)
			}
			if merged[c] {
				return fmt.Errorf("dendrogram: merge %d reuses already-merged cluster %d", i, c)
			}
		}
		merged[m.A] = true
		merged[m.B] = true
		if m.Round < 0 {
			return fmt.Errorf("dendrogram: merge %d has negative round", i)
		}
	}
	return nil
}

// Size returns the number of leaves under cluster id.
func (d *Dendrogram) Size(id int32) int {
	if id < int32(d.Leaves) {
		return 1
	}
	m := d.Merges[id-int32(d.Leaves)]
	return d.Size(m.A) + d.Size(m.B)
}

// Members returns the leaf ids under cluster id, ascending.
func (d *Dendrogram) Members(id int32) []int32 {
	var out []int32
	var walk func(int32)
	walk = func(c int32) {
		if c < int32(d.Leaves) {
			out = append(out, c)
			return
		}
		m := d.Merges[c-int32(d.Leaves)]
		walk(m.A)
		walk(m.B)
	}
	walk(id)
	// Members come out in traversal order; sort for stable output.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// CutAt returns a flat partition: only merges with Sim >= threshold are
// applied, and each leaf is labeled with its resulting cluster's smallest
// leaf id. Higher thresholds give finer partitions.
func (d *Dendrogram) CutAt(threshold float64) []int32 {
	parent := newUnionFind(d.Leaves + len(d.Merges))
	for _, m := range d.Merges {
		if m.Sim >= threshold {
			parent.unionInto(m.A, m.New)
			parent.unionInto(m.B, m.New)
		}
	}
	return parent.leafLabels(d.Leaves)
}

// Roots returns the cluster ids that were never merged into a larger
// cluster — the final forest roots (the paper's root topics), ascending.
func (d *Dendrogram) Roots() []int32 {
	merged := make([]bool, d.Leaves+len(d.Merges))
	for _, m := range d.Merges {
		merged[m.A] = true
		merged[m.B] = true
	}
	var out []int32
	for id := int32(0); int(id) < len(merged); id++ {
		if !merged[id] {
			out = append(out, id)
		}
	}
	return out
}

// Children returns the direct children of cluster id: the two merged
// clusters for an internal node, nil for a leaf.
func (d *Dendrogram) Children(id int32) []int32 {
	if id < int32(d.Leaves) {
		return nil
	}
	m := d.Merges[id-int32(d.Leaves)]
	return []int32{m.A, m.B}
}

// Sim returns the merge similarity that created cluster id, or 1 for
// leaves (a singleton is perfectly self-similar).
func (d *Dendrogram) Sim(id int32) float64 {
	if id < int32(d.Leaves) {
		return 1
	}
	return d.Merges[id-int32(d.Leaves)].Sim
}

// unionFind tracks cluster membership through merges.
type unionFind struct {
	parent []int32
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int32, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
	}
	return uf
}

func (uf *unionFind) find(x int32) int32 {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// unionInto attaches x's root under the cluster id `into` (which is its own
// root by construction: merge ids are minted fresh).
func (uf *unionFind) unionInto(x, into int32) {
	uf.parent[uf.find(x)] = into
}

// leafLabels returns, for each leaf, the smallest leaf id within its final
// cluster — a canonical partition labeling.
func (uf *unionFind) leafLabels(leaves int) []int32 {
	minLeaf := make(map[int32]int32)
	for l := int32(0); l < int32(leaves); l++ {
		r := uf.find(l)
		if cur, ok := minLeaf[r]; !ok || l < cur {
			minLeaf[r] = l
		}
	}
	out := make([]int32, leaves)
	for l := int32(0); l < int32(leaves); l++ {
		out[l] = minLeaf[uf.find(l)]
	}
	return out
}
