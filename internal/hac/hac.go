// Package hac implements classic sequential hierarchical agglomerative
// clustering on a sparse similarity graph — the baseline Parallel HAC is
// measured against (paper §2.2).
//
// Each iteration merges the single globally most-similar pair, then updates
// the merged node's neighborhood with the paper's Eq. 4 √-normalized rule:
//
//	S(AB,C) = √nA/(√nA+√nB)·S(A,C) + √nB/(√nA+√nB)·S(B,C)
//
// with S treated as 0 when an edge is absent (the sparse-matrix relaxation
// of §2.2 Challenge 1). Clustering stops when no remaining edge reaches the
// stop threshold. The O(E log E) heap-based implementation still scans the
// whole frontier once per merge in the worst case, which is exactly the
// scalability wall (Challenge 2) that motivates Parallel HAC.
package hac

import (
	"container/heap"
	"fmt"
	"math"

	"shoal/internal/dendrogram"
	"shoal/internal/wgraph"
)

// Config controls sequential HAC.
type Config struct {
	// StopThreshold ends clustering when the best remaining similarity
	// falls below it.
	StopThreshold float64
	// MaxMerges caps the number of merges; 0 means unlimited.
	MaxMerges int
}

// DefaultConfig stops at similarity 0.35.
func DefaultConfig() Config { return Config{StopThreshold: 0.35} }

// Cluster runs HAC over a copy of g (the input graph is not modified) with
// initial cluster sizes sizes[i] (nil means all 1). It returns the merge
// dendrogram; leaf ids are graph node ids. The input graph is scanned
// exactly once (a frozen CSR scans allocation-free).
func Cluster(g wgraph.View, sizes []int, cfg Config) (*dendrogram.Dendrogram, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("hac: empty graph")
	}
	if cfg.StopThreshold < 0 || cfg.StopThreshold > 1 {
		return nil, fmt.Errorf("hac: StopThreshold must be in [0,1], got %f", cfg.StopThreshold)
	}
	if sizes != nil && len(sizes) != n {
		return nil, fmt.Errorf("hac: sizes length %d != nodes %d", len(sizes), n)
	}

	// Mutable clustering state. Node ids grow as merges mint new ids, so
	// adjacency is a growable slice of maps; alive[id] marks current
	// clusters.
	type state struct {
		adj   []map[int32]float64
		size  []float64 // √-rule uses sizes; keep as float for weights
		alive []bool
	}
	capHint := 2 * n
	st := &state{
		adj:   make([]map[int32]float64, n, capHint),
		size:  make([]float64, n, capHint),
		alive: make([]bool, n, capHint),
	}
	for i := 0; i < n; i++ {
		st.alive[i] = true
		st.size[i] = 1
		if sizes != nil {
			if sizes[i] <= 0 {
				return nil, fmt.Errorf("hac: non-positive size for node %d", i)
			}
			st.size[i] = float64(sizes[i])
		}
	}
	// One edge scan feeds both the adjacency state and the heap; the
	// second full Edges() materialization is gone.
	edges := g.Edges()
	pq := make(edgeHeap, 0, len(edges))
	for _, e := range edges {
		if st.adj[e.U] == nil {
			st.adj[e.U] = make(map[int32]float64)
		}
		if st.adj[e.V] == nil {
			st.adj[e.V] = make(map[int32]float64)
		}
		st.adj[e.U][e.V] = e.W
		st.adj[e.V][e.U] = e.W
		pq = append(pq, heapEdge{u: e.U, v: e.V, sim: e.W})
	}
	heap.Init(&pq)

	d := &dendrogram.Dendrogram{Leaves: n}
	round := int32(0)
	for pq.Len() > 0 {
		if cfg.MaxMerges > 0 && len(d.Merges) >= cfg.MaxMerges {
			break
		}
		top := heap.Pop(&pq).(heapEdge)
		if top.sim < cfg.StopThreshold {
			break
		}
		u, v := top.u, top.v
		if !st.alive[u] || !st.alive[v] {
			continue // stale heap entry
		}
		cur, ok := st.adj[u][v]
		if !ok || cur != top.sim {
			continue // edge updated since enqueued
		}

		newID := int32(len(st.adj))
		st.adj = append(st.adj, make(map[int32]float64))
		st.size = append(st.size, st.size[u]+st.size[v])
		st.alive = append(st.alive, true)
		st.alive[u] = false
		st.alive[v] = false

		wu := math.Sqrt(st.size[u])
		wv := math.Sqrt(st.size[v])
		den := wu + wv

		// Gather the union of neighborhoods; Eq. 4 with missing edges
		// contributing 0.
		for x, s := range st.adj[u] {
			if x == v {
				continue
			}
			st.adj[newID][x] = wu / den * s
		}
		for x, s := range st.adj[v] {
			if x == u {
				continue
			}
			st.adj[newID][x] += wv / den * s
		}
		// Rewire neighbors and enqueue updated edges.
		for x, s := range st.adj[newID] {
			delete(st.adj[x], u)
			delete(st.adj[x], v)
			st.adj[x][newID] = s
			if s >= cfg.StopThreshold {
				heap.Push(&pq, heapEdge{u: newID, v: x, sim: s})
			}
		}
		st.adj[u] = nil
		st.adj[v] = nil

		d.Merges = append(d.Merges, dendrogram.Merge{
			A: u, B: v, New: newID, Sim: top.sim, Round: round,
		})
		round++
	}
	return d, nil
}

// heapEdge is a candidate merge in the lazy-deletion heap.
type heapEdge struct {
	u, v int32
	sim  float64
}

type edgeHeap []heapEdge

func (h edgeHeap) Len() int { return len(h) }

// Less orders by similarity descending, then canonical edge id ascending so
// ties are deterministic.
func (h edgeHeap) Less(i, j int) bool {
	if h[i].sim != h[j].sim {
		return h[i].sim > h[j].sim
	}
	iu, iv := canon(h[i].u, h[i].v)
	ju, jv := canon(h[j].u, h[j].v)
	if iu != ju {
		return iu < ju
	}
	return iv < jv
}

func (h edgeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *edgeHeap) Push(x any) { *h = append(*h, x.(heapEdge)) }

func (h *edgeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func canon(u, v int32) (int32, int32) {
	if u < v {
		return u, v
	}
	return v, u
}
