// Package recommend implements the two recommenders compared in the
// paper's online A/B test (§3, Fig. 4):
//
//   - the control recommends items by matching ontology-driven categories
//     (the user's seed category, then its siblings under the same parent),
//   - the experiment recommends items by matching SHOAL topics, which span
//     categories and therefore cover the user's whole shopping scenario.
//
// Both recommenders answer the same question — "given the item a user just
// engaged with, which items should the panel show?" — so the A/B simulator
// can compare them like-for-like.
package recommend

import (
	"fmt"
	"math/rand/v2"

	"shoal/internal/model"
	"shoal/internal/taxonomy"
)

// Recommender produces up to k item recommendations for a seed item. The
// rng makes selection among eligible items reproducible; implementations
// must not recommend the seed itself.
type Recommender interface {
	// Recommend returns up to k items for the seed.
	Recommend(seed model.ItemID, k int, rng *rand.Rand) []model.ItemID
	// Name identifies the arm in reports.
	Name() string
}

// CategoryRecommender is the control arm: items from the seed's leaf
// category, padded with items from sibling categories (same ontology
// parent) when the leaf runs dry.
type CategoryRecommender struct {
	corpus  *model.Corpus
	byCat   map[model.CategoryID][]model.ItemID
	sibling map[model.CategoryID][]model.CategoryID
}

// NewCategoryRecommender indexes the corpus by leaf category.
func NewCategoryRecommender(corpus *model.Corpus) (*CategoryRecommender, error) {
	if err := corpus.Validate(); err != nil {
		return nil, fmt.Errorf("recommend: %w", err)
	}
	r := &CategoryRecommender{
		corpus:  corpus,
		byCat:   make(map[model.CategoryID][]model.ItemID),
		sibling: make(map[model.CategoryID][]model.CategoryID),
	}
	for i := range corpus.Items {
		r.byCat[corpus.Items[i].Category] = append(r.byCat[corpus.Items[i].Category], corpus.Items[i].ID)
	}
	byParent := make(map[model.CategoryID][]model.CategoryID)
	for i := range corpus.Categories {
		c := &corpus.Categories[i]
		if c.Parent != model.RootCategory {
			byParent[c.Parent] = append(byParent[c.Parent], c.ID)
		}
	}
	for _, siblings := range byParent {
		for _, c := range siblings {
			for _, s := range siblings {
				if s != c {
					r.sibling[c] = append(r.sibling[c], s)
				}
			}
		}
	}
	return r, nil
}

// Name implements Recommender.
func (r *CategoryRecommender) Name() string { return "category-match" }

// Recommend implements Recommender. The seed's own leaf category is
// exhausted first; sibling categories only pad the panel when the leaf
// pool cannot fill it (a category recommender that diluted every panel
// with siblings would be an unfairly weak control arm).
func (r *CategoryRecommender) Recommend(seed model.ItemID, k int, rng *rand.Rand) []model.ItemID {
	if int(seed) < 0 || int(seed) >= len(r.corpus.Items) || k <= 0 {
		return nil
	}
	cat := r.corpus.Items[seed].Category
	pool := make([]model.ItemID, 0, k)
	for _, it := range r.byCat[cat] {
		if it != seed {
			pool = append(pool, it)
		}
	}
	out := sample(pool, k, rng)
	if len(out) < k {
		var padding []model.ItemID
		for _, sib := range r.sibling[cat] {
			padding = append(padding, r.byCat[sib]...)
		}
		out = append(out, sample(padding, k-len(out), rng)...)
	}
	return out
}

// TopicRecommender is the experiment arm: items from the seed's SHOAL
// topic, widening to the parent topic (and ultimately the root topic) when
// the deepest topic has too few items.
type TopicRecommender struct {
	corpus *model.Corpus
	tx     *taxonomy.Taxonomy
}

// NewTopicRecommender wraps a built taxonomy.
func NewTopicRecommender(corpus *model.Corpus, tx *taxonomy.Taxonomy) (*TopicRecommender, error) {
	if tx == nil {
		return nil, fmt.Errorf("recommend: nil taxonomy")
	}
	if len(tx.ItemTopic) != len(corpus.Items) {
		return nil, fmt.Errorf("recommend: taxonomy covers %d items, corpus has %d", len(tx.ItemTopic), len(corpus.Items))
	}
	return &TopicRecommender{corpus: corpus, tx: tx}, nil
}

// Name implements Recommender.
func (r *TopicRecommender) Name() string { return "topic-match" }

// Recommend implements Recommender.
func (r *TopicRecommender) Recommend(seed model.ItemID, k int, rng *rand.Rand) []model.ItemID {
	if int(seed) < 0 || int(seed) >= len(r.corpus.Items) || k <= 0 {
		return nil
	}
	tid := r.tx.ItemTopic[seed]
	if tid == taxonomy.NoTopic {
		return nil
	}
	// Widen until the pool can fill the panel or we hit the root.
	for {
		t := &r.tx.Topics[tid]
		if len(t.Items) > k || t.Parent == taxonomy.NoTopic {
			break
		}
		tid = t.Parent
	}
	t := &r.tx.Topics[tid]
	pool := make([]model.ItemID, 0, len(t.Items))
	for _, it := range t.Items {
		if it != seed {
			pool = append(pool, it)
		}
	}
	return sample(pool, k, rng)
}

// sample returns k items drawn without replacement (all of pool when
// len(pool) <= k), in a deterministic order for a given rng state.
func sample(pool []model.ItemID, k int, rng *rand.Rand) []model.ItemID {
	if len(pool) <= k {
		out := make([]model.ItemID, len(pool))
		copy(out, pool)
		return out
	}
	// Partial Fisher–Yates over a copy.
	cp := make([]model.ItemID, len(pool))
	copy(cp, pool)
	for i := 0; i < k; i++ {
		j := i + rng.IntN(len(cp)-i)
		cp[i], cp[j] = cp[j], cp[i]
	}
	return cp[:k]
}
