package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shoal/internal/core"
	"shoal/internal/synth"
)

var (
	buildOnce sync.Once
	testBuild *core.Build
	buildErr  error
)

func getBuild(t *testing.T) *core.Build {
	t.Helper()
	buildOnce.Do(func() {
		cfg := core.DefaultConfig()
		cfg.Word2Vec.Epochs = 1
		cfg.Word2Vec.MinCount = 1
		cfg.Graph.MinSimilarity = 0.2
		cfg.HAC.StopThreshold = 0.12
		cfg.Taxonomy.Levels = []float64{0.12, 0.4}
		cfg.CatCorr.MinStrength = 0
		testBuild, buildErr = core.Run(synth.Curated(), cfg)
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return testBuild
}

func newServer(t *testing.T) *httptest.Server {
	t.Helper()
	h, err := NewHandler(getBuild(t))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestNewHandlerValidation(t *testing.T) {
	if _, err := NewHandler(nil); err == nil {
		t.Fatal("nil build accepted")
	}
}

func TestSearchEndpoint(t *testing.T) {
	srv := newServer(t)
	var hits []TopicSummary
	code := getJSON(t, srv.URL+"/api/search?q=beach+dress&k=3", &hits)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(hits) == 0 {
		t.Fatal("no hits for beach dress")
	}
	if hits[0].Score <= 0 || hits[0].Items == 0 {
		t.Fatalf("bad hit payload: %+v", hits[0])
	}
}

func TestSearchValidation(t *testing.T) {
	srv := newServer(t)
	if code := getJSON(t, srv.URL+"/api/search", nil); code != http.StatusBadRequest {
		t.Fatalf("missing q: status = %d, want 400", code)
	}
	if code := getJSON(t, srv.URL+"/api/search?q=x&k=0", nil); code != http.StatusBadRequest {
		t.Fatalf("k=0: status = %d, want 400", code)
	}
	if code := getJSON(t, srv.URL+"/api/search?q=x&k=boom", nil); code != http.StatusBadRequest {
		t.Fatalf("k=boom: status = %d, want 400", code)
	}
}

func TestTopicEndpoint(t *testing.T) {
	srv := newServer(t)
	b := getBuild(t)
	root := b.Taxonomy.Roots()[0]
	var detail TopicDetail
	code := getJSON(t, fmt.Sprintf("%s/api/topics/%d", srv.URL, root), &detail)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if detail.ID != root {
		t.Fatalf("detail.ID = %d, want %d", detail.ID, root)
	}
	if len(detail.Categories) == 0 {
		t.Fatal("no category refs")
	}
	for _, sub := range detail.SubTopics {
		if sub.Level != detail.Level+1 {
			t.Fatalf("subtopic level %d under level %d", sub.Level, detail.Level)
		}
	}
}

func TestTopicNotFound(t *testing.T) {
	srv := newServer(t)
	if code := getJSON(t, srv.URL+"/api/topics/9999", nil); code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", code)
	}
	if code := getJSON(t, srv.URL+"/api/topics/abc", nil); code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", code)
	}
}

func TestTopicItemsEndpoint(t *testing.T) {
	srv := newServer(t)
	b := getBuild(t)
	root := b.Taxonomy.Roots()[0]
	var all []ItemRef
	if code := getJSON(t, fmt.Sprintf("%s/api/topics/%d/items", srv.URL, root), &all); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(all) == 0 {
		t.Fatal("no items")
	}
	// Filter by the first category of the topic.
	cat := b.Taxonomy.Topics[root].Categories[0]
	var filtered []ItemRef
	if code := getJSON(t, fmt.Sprintf("%s/api/topics/%d/items?category=%d", srv.URL, root, cat), &filtered); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(filtered) == 0 || len(filtered) > len(all) {
		t.Fatalf("filtered = %d, all = %d", len(filtered), len(all))
	}
	for _, it := range filtered {
		if it.Category != cat {
			t.Fatalf("item %d leaked from category %d", it.ID, it.Category)
		}
	}
	if code := getJSON(t, fmt.Sprintf("%s/api/topics/%d/items?category=999", srv.URL, root), nil); code != http.StatusBadRequest {
		t.Fatalf("bad category: status = %d, want 400", code)
	}
}

func TestRelatedEndpoint(t *testing.T) {
	srv := newServer(t)
	b := getBuild(t)
	// Find a category with correlations.
	pairs := b.Correlations.Pairs()
	if len(pairs) == 0 {
		t.Skip("no correlations in fixture")
	}
	var rel []RelatedCategory
	code := getJSON(t, fmt.Sprintf("%s/api/categories/%d/related", srv.URL, pairs[0].A), &rel)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(rel) == 0 {
		t.Fatal("no related categories")
	}
	if rel[0].Name == "" || rel[0].Strength <= 0 {
		t.Fatalf("bad payload: %+v", rel[0])
	}
	if code := getJSON(t, srv.URL+"/api/categories/9999/related", nil); code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", code)
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv := newServer(t)
	var stats Stats
	if code := getJSON(t, srv.URL+"/api/stats", &stats); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if stats.Items <= 0 || stats.Topics <= 0 || stats.RootTopics <= 0 || stats.Entities <= 0 {
		t.Fatalf("non-positive counts in stats: %+v", stats)
	}
	if stats.Shards <= 0 {
		t.Fatalf("stats missing the substrate shard count: %+v", stats)
	}
	if len(stats.Stages) == 0 {
		t.Fatal("stats has no stage timings")
	}
	seen := make(map[string]bool)
	for _, st := range stats.Stages {
		if st.Stage == "" {
			t.Fatalf("unnamed stage in %+v", stats.Stages)
		}
		if st.ElapsedMs < 0 || st.StartMs < 0 {
			t.Fatalf("negative timing: %+v", st)
		}
		seen[st.Stage] = true
	}
	for _, want := range []string{"entities", "entity-graph", "parallel-hac", "taxonomy"} {
		if !seen[want] {
			t.Fatalf("stage %q missing from stats (got %v)", want, stats.Stages)
		}
	}
}

func TestConcurrentRequests(t *testing.T) {
	srv := newServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := srv.URL + "/api/search?q=beach+dress"
			if i%3 == 1 {
				url = srv.URL + "/api/stats"
			}
			resp, err := http.Get(url)
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d for %s", resp.StatusCode, url)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSwapValidation checks that a broken build cannot be published.
func TestSwapValidation(t *testing.T) {
	h, err := NewHandler(getBuild(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Swap(nil); err == nil {
		t.Fatal("Swap(nil) accepted")
	}
	if err := h.Swap(&core.Build{}); err == nil {
		t.Fatal("Swap of taxonomy-less build accepted")
	}
	if h.Swaps() != 0 {
		t.Fatalf("rejected swaps counted: %d", h.Swaps())
	}
	if h.Current() != getBuild(t) {
		t.Fatal("rejected swaps replaced the served build")
	}
}

// TestSwapUnderLoad hammers the handler with parallel requests while
// builds are swapped in and out. Run under -race this is the zero-downtime
// guarantee: no request may observe an error or a torn snapshot.
func TestSwapUnderLoad(t *testing.T) {
	first := getBuild(t)
	// A second, structurally different build to alternate with.
	cfg := core.DefaultConfig()
	cfg.Word2Vec.Epochs = 1
	cfg.Word2Vec.MinCount = 1
	cfg.Graph.MinSimilarity = 0.2
	cfg.HAC.StopThreshold = 0.12
	cfg.Taxonomy.Levels = []float64{0.12}
	cfg.CatCorr.MinStrength = 0
	second, err := core.Run(synth.Curated(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHandler(first)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	stop := make(chan struct{})
	errs := make(chan error, 32)
	var completed atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	paths := []string{
		"/api/search?q=beach+dress&k=3",
		"/api/stats",
		"/api/topics/0",
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				url := srv.URL + paths[(i+n)%len(paths)]
				resp, err := http.Get(url)
				if err != nil {
					failed.Store(true)
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failed.Store(true)
					errs <- fmt.Errorf("status %d for %s", resp.StatusCode, url)
					return
				}
				completed.Add(1)
			}
		}(i)
	}
	// Keep swapping for as long as the readers are producing traffic, so
	// swaps genuinely interleave with in-flight requests instead of all
	// landing before the first response. A reader failure or the deadline
	// breaks the loop rather than hanging the package.
	builds := [2]*core.Build{first, second}
	deadline := time.Now().Add(30 * time.Second)
	for n := 0; completed.Load() < 400 && !failed.Load(); n++ {
		if time.Now().After(deadline) {
			t.Error("readers did not reach 400 requests before deadline")
			break
		}
		if err := h.Swap(builds[n%2]); err != nil {
			t.Fatal(err)
		}
		time.Sleep(200 * time.Microsecond)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if h.Swaps() == 0 {
		t.Fatal("no swaps performed")
	}
	if cur := h.Current(); cur != first && cur != second {
		t.Fatalf("Current() = %p, not one of the swapped builds", cur)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Post(srv.URL+"/api/search?q=x", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d, want 405", resp.StatusCode)
	}
}

// A build whose clustering ran on the BSP engine must surface the engine
// profile in /api/stats; builds from the shared-memory path must omit it.
func TestStatsBSPSection(t *testing.T) {
	srv := newServer(t)
	var stats Stats
	if code := getJSON(t, srv.URL+"/api/stats", &stats); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if stats.BSP {
		t.Fatal("shared-memory build reported bsp enabled")
	}
	if stats.BSPStats != nil {
		t.Fatalf("shared-memory build surfaced BSP stats: %+v", stats.BSPStats)
	}

	cfg := core.DefaultConfig()
	cfg.Word2Vec.Epochs = 1
	cfg.Word2Vec.MinCount = 1
	cfg.Graph.MinSimilarity = 0.2
	cfg.HAC.StopThreshold = 0.12
	cfg.Taxonomy.Levels = []float64{0.12, 0.4}
	cfg.CatCorr.MinStrength = 0
	cfg.BSP = true
	b, err := core.Run(synth.Curated(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHandler(b)
	if err != nil {
		t.Fatal(err)
	}
	bsrv := httptest.NewServer(h)
	defer bsrv.Close()
	if code := getJSON(t, bsrv.URL+"/api/stats", &stats); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !stats.BSP {
		t.Fatal("BSP build did not report bsp enabled")
	}
	if stats.BSPStats == nil {
		t.Fatal("BSP build did not surface engine stats")
	}
	if stats.BSPStats.Supersteps <= 0 || stats.BSPStats.Sends <= 0 || len(stats.BSPStats.ActivePerStep) == 0 {
		t.Fatalf("implausible BSP stats: %+v", stats.BSPStats)
	}
	if stats.BSPStats.CombinerHitRate < 0 || stats.BSPStats.CombinerHitRate > 1 {
		t.Fatalf("combiner hit rate out of range: %+v", stats.BSPStats)
	}
}
