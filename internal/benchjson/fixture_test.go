package benchjson

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"shoal/internal/core"
	"shoal/internal/synth"
)

// The fixture cache must reassemble a build whose benchmark-visible
// state is identical to the original: byte-equal graph arrays, equal
// dendrogram/taxonomy/entities, and a searcher that answers queries the
// same way.
func TestFixtureRoundTrip(t *testing.T) {
	gen := synth.DefaultConfig()
	gen.Scenarios = 6
	gen.ItemsPerScenario = 40
	gen.QueriesPerScenario = 10
	gen.NoiseItems = 20
	gen.HeadQueries = 4
	corpus, err := synth.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fixedWorldConfig()
	cfg.Word2Vec.MinCount = 1
	b, err := core.Run(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "fixture.gob")
	if err := saveFixture(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := loadFixture(path)
	if err != nil {
		t.Fatal(err)
	}

	wo, wn, ww := b.Graph.BaseCSR().Adj()
	go_, gn, gw := got.Graph.BaseCSR().Adj()
	if !reflect.DeepEqual(wo, go_) || !reflect.DeepEqual(wn, gn) || !reflect.DeepEqual(ww, gw) {
		t.Fatal("graph CSR arrays differ after fixture round trip")
	}
	if got.Graph.NumShards() != b.Graph.NumShards() {
		t.Fatalf("shards %d != %d", got.Graph.NumShards(), b.Graph.NumShards())
	}
	if !reflect.DeepEqual(b.Dendrogram, got.Dendrogram) {
		t.Fatal("dendrogram differs after fixture round trip")
	}
	if !reflect.DeepEqual(b.Entities, got.Entities) {
		t.Fatal("entity set differs after fixture round trip")
	}
	if !reflect.DeepEqual(b.Taxonomy, got.Taxonomy) {
		t.Fatal("taxonomy differs after fixture round trip")
	}
	if got.Searcher == nil {
		t.Fatal("fixture load did not reconstruct the searcher")
	}
	probe := corpus.Queries[0].Text
	if !reflect.DeepEqual(b.Searcher.Search(probe, 5), got.Searcher.Search(probe, 5)) {
		t.Fatal("searcher answers differ after fixture round trip")
	}

	// A corrupt cache must be rejected, not half-loaded.
	if err := os.WriteFile(path, []byte("not a fixture"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadFixture(path); err == nil {
		t.Fatal("corrupt fixture accepted")
	}
}
