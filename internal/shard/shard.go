// Package shard partitions the immutable CSR graph substrate into
// contiguous row-range shards — the scaling primitive for multi-worker
// (and, later, multi-host) clustering of larger corpora.
//
// A shard.CSR is a zero-copy view over one *wgraph.CSR: each shard owns
// the rows [lo,hi) of a Plan that balances shards by adjacency entries
// (edge count), not node count, so skewed degree distributions still
// yield even per-worker work. Per-shard aggregates (entry, edge and
// weight totals) are cached at construction. The whole thing satisfies
// wgraph.View and unwraps to its base CSR through wgraph.CSRBacked, so
// every existing consumer works unchanged while partition-parallel
// consumers (phac.Diffuse, phac.Cluster's contracted rebuild,
// entitygraph.Build) schedule one worker per shard.
//
// Determinism contract: sharding never changes any observable result.
// Every partition-parallel consumer produces output byte-identical to
// the single-shard run (see the TestShardedObservationallyIdentical
// family at the wgraph, phac and taxonomy levels).
package shard

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"shoal/internal/wgraph"
)

// Plan is a partition of the row space [0,n) into contiguous shards.
// Shard i covers rows [bounds[i], bounds[i+1]).
type Plan struct {
	bounds []int32
}

// NumShards returns the number of shards in the plan.
func (p Plan) NumShards() int {
	if len(p.bounds) == 0 {
		return 0
	}
	return len(p.bounds) - 1
}

// Bounds returns the row range [lo,hi) of shard i.
func (p Plan) Bounds(i int) (lo, hi int32) {
	return p.bounds[i], p.bounds[i+1]
}

// Find returns the shard owning row u.
func (p Plan) Find(u int32) int {
	// First bound strictly greater than u, minus one.
	i := sort.Search(len(p.bounds)-1, func(i int) bool { return p.bounds[i+1] > u })
	return i
}

// clampShards resolves a shard-count request: <= 0 means GOMAXPROCS, and
// a plan never has more shards than rows (plus at least one).
func clampShards(shards, n int) int {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > n {
		shards = n
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}

// PlanCounts builds a plan over len(counts) rows balanced by the given
// per-row counts (adjacency entries, degrees, …): bound i is placed at
// the first row whose prefix count reaches i/shards of the total. The
// greedy prefix walk is deterministic and monotone, so equal inputs
// always produce equal plans.
func PlanCounts(counts []int32, shards int) Plan {
	n := len(counts)
	shards = clampShards(shards, n)
	var total int64
	for _, c := range counts {
		total += int64(c)
	}
	bounds := make([]int32, shards+1)
	bounds[shards] = int32(n)
	var prefix int64
	next := 1 // next bound to place
	for u := 0; u < n && next < shards; u++ {
		prefix += int64(counts[u])
		// Place every bound whose target the prefix has reached; a row
		// heavier than a whole target can consume several bounds (those
		// shards come out empty, which is fine — the plan stays valid).
		for next < shards && prefix*int64(shards) >= total*int64(next) {
			bounds[next] = int32(u + 1)
			next++
		}
	}
	for ; next < shards; next++ {
		bounds[next] = int32(n)
	}
	return Plan{bounds: bounds}
}

// PlanRows builds an edge-balanced plan over the rows of c: shard
// boundaries are chosen so each shard holds roughly the same number of
// adjacency entries rather than the same number of rows.
func PlanRows(c *wgraph.CSR, shards int) Plan {
	offsets, _, _ := c.Adj()
	n := c.NumNodes()
	shards = clampShards(shards, n)
	total := int64(offsets[n])
	bounds := make([]int32, shards+1)
	bounds[shards] = int32(n)
	for i := 1; i < shards; i++ {
		target := total * int64(i) / int64(shards)
		// First row whose prefix entry count reaches the target.
		j := sort.Search(n, func(u int) bool { return int64(offsets[u+1]) >= target })
		if j+1 > int(bounds[i-1]) {
			bounds[i] = int32(j + 1)
		} else {
			bounds[i] = bounds[i-1]
		}
		if bounds[i] > int32(n) {
			bounds[i] = int32(n)
		}
	}
	return Plan{bounds: bounds}
}

// Shard is one row-range partition of a CSR with its cached aggregates.
// The slices are zero-copy views into the base arrays; Offsets holds the
// base (global) offsets for rows [Lo,Hi] — index it as Offsets[u-Lo] —
// so Nbrs/Wts positions are Offsets[u-Lo]-Offsets[0] relative.
type Shard struct {
	Lo, Hi  int32     // row range [Lo, Hi)
	Offsets []int32   // global offsets of rows Lo..Hi (len Hi-Lo+1)
	Nbrs    []int32   // adjacency entries of the shard's rows
	Wts     []float64 // parallel weights
	// Entries is the number of directed adjacency entries in the shard
	// (== len(Nbrs)); the Plan balances this, not the row count.
	Entries int
	// Edges is the number of undirected edges owned by the shard under
	// the canonical owner rule: edge (u,v), u < v, belongs to u's shard.
	Edges int
	// DegTotal is the sum of weighted degrees over the shard's rows.
	DegTotal float64
	// Weight is the total weight of the shard's owned edges, accumulated
	// in canonical row-major order.
	Weight float64
}

// CSR is a sharded view of an immutable wgraph.CSR. It satisfies
// wgraph.View by delegating every observation to the base CSR — sharding
// is invisible to single-threaded consumers — while partition-parallel
// consumers iterate Shards() and schedule one worker per shard. Like its
// base, a shard.CSR is immutable and safe for concurrent use.
type CSR struct {
	base   *wgraph.CSR
	plan   Plan
	shards []Shard
}

var (
	_ wgraph.View      = (*CSR)(nil)
	_ wgraph.CSRBacked = (*CSR)(nil)
)

// Partition shards c by an edge-balanced row plan. shards <= 0 means
// GOMAXPROCS. The result shares c's arrays (zero copy).
func Partition(c *wgraph.CSR, shards int) *CSR {
	return WithPlan(c, PlanRows(c, shards))
}

// WithPlan shards c by an explicit plan, caching per-shard aggregates.
func WithPlan(c *wgraph.CSR, p Plan) *CSR {
	offsets, nbrs, wts := c.Adj()
	s := &CSR{base: c, plan: p, shards: make([]Shard, p.NumShards())}
	for i := range s.shards {
		lo, hi := p.Bounds(i)
		sh := &s.shards[i]
		sh.Lo, sh.Hi = lo, hi
		sh.Offsets = offsets[lo : hi+1]
		sh.Nbrs = nbrs[offsets[lo]:offsets[hi]]
		sh.Wts = wts[offsets[lo]:offsets[hi]]
		sh.Entries = len(sh.Nbrs)
		for u := lo; u < hi; u++ {
			sh.DegTotal += c.WeightedDegree(u)
			for j := offsets[u]; j < offsets[u+1]; j++ {
				if v := nbrs[j]; u < v {
					sh.Edges++
					sh.Weight += wts[j]
				}
			}
		}
	}
	return s
}

// FromEdges builds a sharded CSR directly from a canonical edge list
// (every edge once with U < V, sorted by (U,V), no duplicates — exactly
// wgraph.FromEdges' contract, validated identically). Row counting and
// filling run one worker per shard: each worker walks only the edges
// incident to its row range, so construction cost is O(E/S + cross-shard
// edges) per worker and the resulting arrays are byte-identical to the
// serial wgraph.FromEdges fill.
func FromEdges(n int, edges []wgraph.Edge, shards int) (*CSR, error) {
	// Same canonical-form contract (and errors) as wgraph.FromEdges.
	// Construction is a multi-pass path anyway, so the shared validator
	// runs as its own pass here rather than duplicating the checks.
	if err := wgraph.ValidateEdges(n, edges); err != nil {
		return nil, err
	}
	// Degree count + canonical total: one serial O(E) pass whose float
	// accumulation order fixes the byte-exact total.
	deg := make([]int32, n)
	var total float64
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
		total += e.W
	}
	offsets := make([]int32, n+1)
	for u := 0; u < n; u++ {
		offsets[u+1] = offsets[u] + deg[u]
	}
	plan := PlanCounts(deg, shards)

	nbrs := make([]int32, 2*len(edges))
	wts := make([]float64, 2*len(edges))
	wdeg := make([]float64, n)
	// Parallel fill, one worker per shard, writing only rows [lo,hi).
	// The input is sorted by (U,V), so a row's V-side entries (neighbors
	// < row, from edges listing the row as V) all precede its U-side
	// entries (neighbors > row) in input order; filling V-side first and
	// U-side second therefore reproduces the serial wgraph.FromEdges
	// layout and float accumulation order byte for byte. The U-side
	// edges of the shard are the contiguous run with U in [lo,hi), and
	// any V-side edge has U < V < hi, so both scans stop at the run end.
	var wg sync.WaitGroup
	for i := 0; i < plan.NumShards(); i++ {
		lo, hi := plan.Bounds(i)
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int32) {
			defer wg.Done()
			// Per-row fill cursors local to this shard.
			cur := make([]int32, hi-lo)
			for u := lo; u < hi; u++ {
				cur[u-lo] = offsets[u]
			}
			uStart := sort.Search(len(edges), func(i int) bool { return edges[i].U >= lo })
			uEnd := sort.Search(len(edges), func(i int) bool { return edges[i].U >= hi })
			for _, e := range edges[:uEnd] {
				if e.V >= lo && e.V < hi {
					c := &cur[e.V-lo]
					nbrs[*c] = e.U
					wts[*c] = e.W
					*c++
					wdeg[e.V] += e.W
				}
			}
			for _, e := range edges[uStart:uEnd] {
				c := &cur[e.U-lo]
				nbrs[*c] = e.V
				wts[*c] = e.W
				*c++
				wdeg[e.U] += e.W
			}
		}(lo, hi)
	}
	wg.Wait()
	base, err := wgraph.FromParts(offsets, nbrs, wts, wdeg, total)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	return WithPlan(base, plan), nil
}

// BaseCSR returns the underlying frozen CSR (wgraph.CSRBacked).
func (s *CSR) BaseCSR() *wgraph.CSR { return s.base }

// Plan returns the row partition.
func (s *CSR) Plan() Plan { return s.plan }

// NumShards returns the number of shards.
func (s *CSR) NumShards() int { return len(s.shards) }

// Shards returns the cached per-shard views. Read-only.
func (s *CSR) Shards() []Shard { return s.shards }

// Shard returns shard i.
func (s *CSR) Shard(i int) Shard { return s.shards[i] }

// --- wgraph.View delegation ------------------------------------------

// NumNodes returns the number of nodes (including isolated ones).
func (s *CSR) NumNodes() int { return s.base.NumNodes() }

// NumEdges returns the number of undirected edges.
func (s *CSR) NumEdges() int { return s.base.NumEdges() }

// Weight returns the weight of edge (u,v) and whether it exists.
func (s *CSR) Weight(u, v int32) (float64, bool) { return s.base.Weight(u, v) }

// Degree returns the number of neighbors of u.
func (s *CSR) Degree(u int32) int { return s.base.Degree(u) }

// WeightedDegree returns the cached sum of incident edge weights of u.
func (s *CSR) WeightedDegree(u int32) float64 { return s.base.WeightedDegree(u) }

// TotalWeight returns the cached total edge weight.
func (s *CSR) TotalWeight() float64 { return s.base.TotalWeight() }

// Neighbors returns u's ascending neighbor ids as a zero-copy view.
func (s *CSR) Neighbors(u int32) []int32 { return s.base.Neighbors(u) }

// ForEachNeighbor calls fn for every neighbor of u in ascending order.
func (s *CSR) ForEachNeighbor(u int32, fn func(v int32, w float64)) {
	s.base.ForEachNeighbor(u, fn)
}

// Edges returns every edge once, sorted by (U,V).
func (s *CSR) Edges() []wgraph.Edge { return s.base.Edges() }

// Components returns the connected-component labeling.
func (s *CSR) Components() []int32 { return s.base.Components() }
