package core

import (
	"bytes"
	"context"
	"encoding/gob"
	"testing"

	"shoal/internal/phac"
	"shoal/internal/taxonomy"
	"shoal/internal/wgraph"
)

// TestTaxonomyIdenticalOnMutableGraph is the end-to-end half of the CSR
// equivalence property: clustering and taxonomy construction over the
// pipeline's frozen CSR must match the same stages run over a mutable
// map-backed reconstruction of the identical graph, byte for byte.
func TestTaxonomyIdenticalOnMutableGraph(t *testing.T) {
	corpus := smallCorpus(t)
	cfg := testConfig()
	b, err := Run(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild the entity graph in mutable form from the CSR's edge list.
	mutable := wgraph.New(b.Graph.NumNodes())
	for _, e := range b.Graph.Edges() {
		if err := mutable.SetEdge(e.U, e.V, e.W); err != nil {
			t.Fatal(err)
		}
	}

	sizes := make([]int, len(b.Entities.Entities))
	for i := range sizes {
		sizes[i] = b.Entities.Entities[i].Size()
	}
	ctx := context.Background()
	fromCSR, err := phac.Cluster(ctx, b.Graph, sizes, cfg.HAC)
	if err != nil {
		t.Fatal(err)
	}
	fromMap, err := phac.Cluster(ctx, mutable, sizes, cfg.HAC)
	if err != nil {
		t.Fatal(err)
	}
	if !gobEqual(t, fromCSR, fromMap) {
		t.Fatal("phac.Cluster differs between CSR and mutable graph")
	}

	txCSR, err := taxonomy.Build(ctx, fromCSR.Dendrogram, b.Entities, corpus, cfg.Taxonomy)
	if err != nil {
		t.Fatal(err)
	}
	txMap, err := taxonomy.Build(ctx, fromMap.Dendrogram, b.Entities, corpus, cfg.Taxonomy)
	if err != nil {
		t.Fatal(err)
	}
	if !gobEqual(t, txCSR, txMap) {
		t.Fatal("taxonomy differs between CSR and mutable graph")
	}
	// The pipeline's own dendrogram must agree with both.
	if !gobEqual(t, b.Dendrogram, fromCSR.Dendrogram) {
		t.Fatal("pipeline dendrogram differs from re-clustered CSR dendrogram")
	}
}

func gobEqual(t *testing.T, a, b any) bool {
	t.Helper()
	var ba, bb bytes.Buffer
	if err := gob.NewEncoder(&ba).Encode(a); err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(&bb).Encode(b); err != nil {
		t.Fatal(err)
	}
	return bytes.Equal(ba.Bytes(), bb.Bytes())
}
