// Package describe implements topic description matching (paper §2.3).
//
// A topic is tagged with its most representative queries. The
// representativeness of query q for topic t_k combines two factors:
//
//	pop(q, t_k) = (log tf(q, I_k) + 1) / log tf(I_k)      (popularity)
//	con(q, t_k) = exp(rel(q, D_k)) / (1 + Σ_j exp(rel(q, D_j)))
//	r(q, t_k)   = sqrt(pop · con)
//
// where tf(q, I_k) counts occurrences of q with topic k's items, tf(I_k)
// is the total token mass of the topic, D_k is the pseudo document
// concatenating the topic's item titles, and rel is BM25 relevance. The
// denominator of con sums over every topic: topics whose pseudo document
// shares no term with q have rel = 0 and contribute exp(0) = 1 each, which
// is added in closed form rather than scored individually.
package describe

import (
	"context"
	"fmt"
	"math"
	"sort"

	"shoal/internal/bipartite"
	"shoal/internal/bm25"
	"shoal/internal/model"
	"shoal/internal/taxonomy"
	"shoal/internal/textutil"
)

// Config controls description matching.
type Config struct {
	// TopQueries is the number of representative queries kept per topic.
	TopQueries int
	// BM25 parameterizes the relevance function.
	BM25 bm25.Config
}

// DefaultConfig keeps the 5 best queries per topic.
func DefaultConfig() Config {
	return Config{TopQueries: 5, BM25: bm25.DefaultConfig()}
}

// Description is the ranked query list for one topic.
type Description struct {
	Topic model.TopicID
	// Queries are representative query texts, best first.
	Queries []string
	// Scores are the r(q, t_k) values aligned with Queries.
	Scores []float64
}

// Describe computes representative queries for every topic in tx and
// writes them into the taxonomy (Topic.Description / Topic.DescQueries).
// It returns the full ranked descriptions. Cancellation is checked
// between per-topic scoring passes.
func Describe(ctx context.Context, tx *taxonomy.Taxonomy, corpus *model.Corpus, clicks *bipartite.Graph, cfg Config) ([]Description, error) {
	if cfg.TopQueries <= 0 {
		return nil, fmt.Errorf("describe: TopQueries must be positive, got %d", cfg.TopQueries)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	k := len(tx.Topics)
	if k == 0 {
		return nil, nil
	}

	// Pseudo documents: concatenated item titles per topic.
	docs := make([][]string, k)
	totalTokens := make([]float64, k) // tf(I_k): token mass of the topic
	for t := range tx.Topics {
		for _, it := range tx.Topics[t].Items {
			toks := textutil.Tokenize(corpus.Items[it].Title)
			docs[t] = append(docs[t], toks...)
		}
		totalTokens[t] = float64(len(docs[t]))
	}
	idx, err := bm25.Build(docs, cfg.BM25)
	if err != nil {
		return nil, fmt.Errorf("describe: %w", err)
	}

	// tf(q, I_k): click-weighted occurrences of query q with topic k's
	// items. Collected sparsely by scanning each topic's items once.
	type qtf struct {
		query model.QueryID
		tf    float64
	}
	perTopic := make([][]qtf, k)
	for t := range tx.Topics {
		acc := make(map[model.QueryID]float64)
		for _, it := range tx.Topics[t].Items {
			for _, q := range clicks.QuerySet(it) {
				acc[q] += float64(clicks.ClickCount(q, it))
			}
		}
		lst := make([]qtf, 0, len(acc))
		for q, tf := range acc {
			lst = append(lst, qtf{query: q, tf: tf})
		}
		sort.Slice(lst, func(a, b int) bool { return lst[a].query < lst[b].query })
		perTopic[t] = lst
	}

	// One batch scoring session for every candidate of every topic: the
	// dense BM25 scratch is checked out of the pool once and each term's
	// idf is computed once, instead of paying both per candidate query.
	// Scores are byte-identical to per-candidate ScoreAll calls.
	scorer := idx.NewScorer()
	defer scorer.Close()

	// Candidate token cache: a query that clicks into many topics is a
	// candidate for each of them, but its text never changes — tokenize
	// it once on first sight and reuse the slice across topics. Indexed
	// by dense query id; the nil/empty distinction is carried by a seen
	// mark so empty token lists are cached too.
	qToks := make([][]string, len(corpus.Queries))
	qSeen := make([]bool, len(corpus.Queries))

	out := make([]Description, 0, k)
	for t := range tx.Topics {
		if t%64 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		cands := perTopic[t]
		if len(cands) == 0 {
			out = append(out, Description{Topic: tx.Topics[t].ID})
			continue
		}
		type scored struct {
			text string
			r    float64
		}
		ranked := make([]scored, 0, len(cands))
		for _, c := range cands {
			qText := corpus.Queries[c.query].Text
			if !qSeen[c.query] {
				qSeen[c.query] = true
				qToks[c.query] = textutil.TokenizeFiltered(qText)
			}
			toks := qToks[c.query]

			// Popularity.
			pop := 0.0
			if totalTokens[t] > 1 {
				pop = (math.Log(c.tf) + 1) / math.Log(totalTokens[t])
			}
			if pop > 1 {
				pop = 1
			}

			// Concentration: softmax of BM25 over touched topics, with
			// the untouched mass added in closed form. ScoreAll returns
			// hits in ascending topic order, which fixes the denominator
			// summation order: float addition is not associative, so
			// summing in an arbitrary order would make scores vary run
			// to run.
			rels := scorer.ScoreAll(toks)
			relK := 0.0
			var den float64 = 1 // the "+1" of the formula
			for _, h := range rels {
				if h.Doc == t {
					relK = h.Score
				}
				den += math.Exp(h.Score)
			}
			den += float64(k - len(rels)) // exp(0) per untouched topic
			con := math.Exp(relK) / den

			ranked = append(ranked, scored{text: qText, r: math.Sqrt(pop * con)})
		}
		sort.Slice(ranked, func(a, b int) bool {
			if ranked[a].r != ranked[b].r {
				return ranked[a].r > ranked[b].r
			}
			return ranked[a].text < ranked[b].text
		})
		n := cfg.TopQueries
		if n > len(ranked) {
			n = len(ranked)
		}
		d := Description{Topic: tx.Topics[t].ID}
		for i := 0; i < n; i++ {
			d.Queries = append(d.Queries, ranked[i].text)
			d.Scores = append(d.Scores, ranked[i].r)
		}
		out = append(out, d)

		tx.Topics[t].DescQueries = d.Queries
		if len(d.Queries) > 0 {
			tx.Topics[t].Description = d.Queries[0]
		}
	}
	return out, nil
}
